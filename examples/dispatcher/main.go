// Dispatcher runs a real concurrent power-of-d load balancer — goroutine
// servers, channel queues, a sampling dispatcher — and checks the measured
// mean latency against the paper's finite-regime bounds for the same N, d
// and ρ. The theory is exercised by an actual system rather than its own
// Markov chain.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"finitelb"
)

const (
	nServers    = 4
	dChoices    = 2
	utilization = 0.7
	meanService = 1 * time.Millisecond // unit service time of the model
	totalJobs   = 12_000
	warmupJobs  = 2_000
)

// request carries its birth time so the completing server can record the
// sojourn.
type request struct {
	born time.Time
}

// server is one FIFO worker: a buffered channel feeding a goroutine that
// "serves" by sleeping an exponential time. qlen mirrors the queue length
// for the dispatcher's sampling (channel length alone misses the job in
// service).
type server struct {
	queue chan request
	qlen  atomic.Int64
}

func (s *server) work(rng *rand.Rand, sojourns chan<- time.Duration, wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range s.queue {
		sleep := time.Duration(rng.ExpFloat64() * float64(meanService))
		time.Sleep(sleep)
		s.qlen.Add(-1)
		sojourns <- time.Since(req.born)
	}
}

func main() {
	servers := make([]*server, nServers)
	sojourns := make(chan time.Duration, totalJobs)
	var wg sync.WaitGroup
	for i := range servers {
		servers[i] = &server{queue: make(chan request, totalJobs)}
		wg.Add(1)
		go servers[i].work(rand.New(rand.NewPCG(uint64(i), 99)), sojourns, &wg)
	}

	// Poisson arrivals at rate ρN per unit service time.
	rng := rand.New(rand.NewPCG(2024, 6))
	interMean := float64(meanService) / (utilization * nServers)
	perm := []int{0, 1, 2, 3}
	fmt.Printf("dispatching %d jobs to %d goroutine servers (d=%d, ρ=%.2f)...\n",
		totalJobs, nServers, dChoices, utilization)
	for j := 0; j < totalJobs; j++ {
		time.Sleep(time.Duration(rng.ExpFloat64() * interMean))
		// Power-of-d: sample d distinct servers, pick the shortest queue.
		best := -1
		bestLen := int64(1 << 62)
		for k := 0; k < dChoices; k++ {
			i := k + rng.IntN(nServers-k)
			perm[k], perm[i] = perm[i], perm[k]
			if l := servers[perm[k]].qlen.Load(); l < bestLen {
				best, bestLen = perm[k], l
			}
		}
		servers[best].qlen.Add(1)
		servers[best].queue <- request{born: time.Now()}
	}
	for _, s := range servers {
		close(s.queue)
	}
	wg.Wait()
	close(sojourns)

	var sum time.Duration
	var count int
	seen := 0
	for d := range sojourns {
		seen++
		if seen <= warmupJobs {
			continue
		}
		sum += d
		count++
	}
	measured := float64(sum) / float64(count) / float64(meanService)

	sys, err := finitelb.NewSystem(nServers, dChoices, utilization)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := sys.DelayBounds(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured mean delay   %.3f service times (%d jobs)\n", measured, count)
	fmt.Printf("theory lower bound    %.3f\n", bounds.Lower.MeanDelay)
	fmt.Printf("theory upper bound    %.3f\n", bounds.Upper.MeanDelay)
	fmt.Printf("asymptotic (N→∞)      %.3f\n", sys.AsymptoticDelay())

	// The live system runs on wall-clock sleeps with scheduler jitter, so
	// judge the bracket with slack rather than pretending exactness.
	const slack = 0.15
	switch {
	case measured < bounds.Lower.MeanDelay*(1-slack):
		fmt.Println("\nRESULT: measured delay below the lower bound — investigate!")
	case measured > bounds.Upper.MeanDelay*(1+slack):
		fmt.Println("\nRESULT: measured delay above the upper bound — investigate!")
	default:
		fmt.Println("\nRESULT: live dispatcher sits inside the finite-regime bounds ✔")
	}
}
