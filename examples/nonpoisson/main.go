// Nonpoisson explores the paper's future-work direction: the embedded
// σ-equation of Theorem 2 holds for *any* interarrival law A(t), with
// σ = ρ only in the Poisson case (Theorem 3). Solving it for smoother and
// burstier arrival processes shows how the geometric tail of the
// lower-bound model — and hence queueing delay — responds to arrival
// variability at the same utilization.
package main

import (
	"fmt"
	"log"

	"finitelb"
)

func main() {
	const rho = 0.85 // per-server utilization, service rate 1

	type law struct {
		name  string
		scv   string // squared coefficient of variation of interarrivals
		betas func(int) float64
	}
	laws := []law{
		{"deterministic (D)", "0", finitelb.BetasDeterministic(rho, 1)},
		{"Erlang-4 (E4)", "0.25", finitelb.BetasErlang(4, rho, 1)},
		{"Erlang-2 (E2)", "0.5", finitelb.BetasErlang(2, rho, 1)},
		{"Poisson (M)", "1", finitelb.BetasPoisson(rho, 1)},
		{"hyperexp (H2, bursty)", "≈2.8", finitelb.BetasHyperExp(0.15, rho/3.7, rho*2.1, 1)},
	}

	fmt.Printf("embedded-chain root σ at utilization ρ = %.2f\n", rho)
	fmt.Printf("(per-block tail ratio of the lower-bound model is σᴺ; GI/M/1 mean delay is 1/(1−σ))\n\n")
	fmt.Printf("%-24s %-6s %-10s %-12s %s\n", "interarrival law", "SCV", "σ", "tail σᴺ(N=4)", "GI/M/1 delay")
	for _, l := range laws {
		sigma, err := finitelb.SigmaRoot(l.betas)
		if err != nil {
			log.Fatalf("%s: %v", l.name, err)
		}
		tail := sigma * sigma * sigma * sigma
		fmt.Printf("%-24s %-6s %-10.6f %-12.6f %.4f\n", l.name, l.scv, sigma, tail, 1/(1-sigma))
	}

	fmt.Println()
	fmt.Println("ordering: smoother arrivals (smaller SCV) ⇒ smaller σ ⇒ lighter tails,")
	fmt.Println("bursty arrivals ⇒ heavier tails — the Poisson assumption in the paper's")
	fmt.Println("models is *not* conservative for bursty traffic, which is exactly why it")
	fmt.Println("flags MAP/PH extensions as significant future work.")

	// Theorem 2 made computational: the embedded-chain lower bound for an
	// actual N=3 SQ(2) system under each arrival law, at equal utilization.
	sys, err := finitelb.NewSystem(3, 2, rho)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinite-regime lower bound on mean delay, N=3, SQ(2), ρ=%.2f, T=2:\n", rho)
	for _, l := range []struct {
		name  string
		shape finitelb.ArrivalShape
	}{
		{"Erlang-4", finitelb.ErlangArrivals(4)},
		{"Erlang-2", finitelb.ErlangArrivals(2)},
		{"Poisson", finitelb.PoissonArrivals()},
		{"hyperexp (bursty)", finitelb.HyperExpArrivals(0.2, 0.5, 4.0/3.0)},
	} {
		r, err := sys.LowerBoundGI(2, l.shape, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %.4f\n", l.name, r.MeanDelay)
	}

	// Sanity check the Poisson closed form in public view: σ must equal ρ.
	sigma, err := finitelb.SigmaRoot(finitelb.BetasPoisson(rho, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 3 check: Poisson σ = %.9f vs ρ = %.2f\n", sigma, rho)
}
