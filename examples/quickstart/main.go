// Quickstart: compute finite-regime delay bounds for a power-of-two
// load balancer and compare them with the asymptotic approximation, an
// exact solve, and a simulation — the full toolbox on one screen.
package main

import (
	"errors"
	"fmt"
	"log"

	"finitelb"
)

func main() {
	// A small cluster: 6 servers, power-of-two choices, 85% utilization.
	sys, err := finitelb.NewSystem(6, 2, 0.85)
	if err != nil {
		log.Fatal(err)
	}

	// Finite-regime bounds (threshold T trades tightness for cost).
	bounds, err := sys.DelayBounds(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean delay ∈ [%.4f, %.4f]   (finite-regime bounds, T=4)\n",
		bounds.Lower.MeanDelay, bounds.Upper.MeanDelay)

	// The classical N→∞ approximation — note how far below the lower
	// bound it sits for this small N at high load.
	fmt.Printf("asymptotic   %.4f            (Mitzenmacher, N → ∞)\n", sys.AsymptoticDelay())

	// Ground truth two ways: exact numerical solve and simulation. (The
	// cap of 15 jobs per queue is effectively infinite for SQ(2) — its
	// queue tails collapse doubly exponentially.)
	exact, err := sys.ExactDelay(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact        %.4f            (numerical stationary solve)\n", exact.MeanDelay)

	simr, err := sys.Simulate(finitelb.SimOptions{Jobs: 1_000_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated    %.4f ± %.4f    (%d jobs)\n", simr.MeanDelay, simr.HalfWidth, simr.Jobs)

	// Tightening the upper bound costs a bigger truncated space; when the
	// modified system loses stability the solver says so instead of lying.
	for t := 1; t <= 5; t++ {
		ub, err := sys.UpperBound(t)
		if errors.Is(err, finitelb.ErrUnstable) {
			fmt.Printf("T=%d: upper-bound model unstable at ρ=0.85 — raise T\n", t)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("T=%d: upper bound %.4f (block size %d)\n", t, ub.MeanDelay, ub.BlockSize)
	}
}
