// Finiteregime condenses the paper's Figure 9 story into one table: how
// fast does the asymptotic (N → ∞) power-of-d delay formula become
// trustworthy as the cluster grows, and how badly does it mislead before
// that? For small N the truth comes from the exact solver; the
// finite-regime lower bound certifies the gap independently.
package main

import (
	"fmt"
	"log"

	"finitelb"
)

func main() {
	const (
		d   = 2
		rho = 0.9
		t   = 4
	)
	asy := finitelb.AsymptoticDelay(d, rho)
	fmt.Printf("SQ(%d) at ρ=%.2f — asymptotic mean delay: %.4f (independent of N)\n\n", d, rho, asy)
	fmt.Printf("%-4s %-10s %-12s %-14s %s\n", "N", "exact", "lower bound", "asym error", "")

	// Per-N queue caps keep the exact state space C(cap+N, N) small while
	// staying effectively infinite for SQ(2)'s doubly-exponential tails.
	for _, cfg := range []struct{ n, cap int }{{2, 80}, {3, 35}, {4, 25}, {6, 14}} {
		n := cfg.n
		sys, err := finitelb.NewSystem(n, d, rho)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := sys.ExactDelay(cfg.cap)
		if err != nil {
			log.Fatal(err)
		}
		lb, err := sys.LowerBound(t)
		if err != nil {
			log.Fatal(err)
		}
		gap := (exact.MeanDelay - asy) / exact.MeanDelay * 100
		note := ""
		if asy < lb.MeanDelay {
			note = "← asymptotic below even the PROVEN lower bound"
		}
		fmt.Printf("%-4d %-10.4f %-12.4f %-14s %s\n",
			n, exact.MeanDelay, lb.MeanDelay, fmt.Sprintf("%.1f%%", gap), note)
	}

	fmt.Println("\nlarger N (exact solve infeasible): simulation vs asymptotic")
	for _, n := range []int{16, 32, 64} {
		sys, err := finitelb.NewSystem(n, d, rho)
		if err != nil {
			log.Fatal(err)
		}
		simr, err := sys.Simulate(finitelb.SimOptions{Jobs: 1_000_000, Seed: uint64(n)})
		if err != nil {
			log.Fatal(err)
		}
		gap := (simr.MeanDelay - asy) / simr.MeanDelay * 100
		fmt.Printf("N=%-3d  simulated %.4f ± %.4f   asym error %.1f%%\n",
			n, simr.MeanDelay, simr.HalfWidth, gap)
	}
	fmt.Println("\nthe error decays roughly like 1/N: the asymptotic formula is fine for")
	fmt.Println("large fleets and dangerous for small ones — the paper's finite-regime")
	fmt.Println("bounds exist precisely for the left side of this table.")
}
