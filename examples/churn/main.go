// Churn is the failure-domain walkthrough: one live SQ(2) farm driven
// through a crash-and-recovery act — N healthy servers, k of them
// crashed mid-run, then restored — with the measured windowed delay
// checked against the paper's QBD bracket at every phase. The point the
// chaos calibration test (internal/lb/chaos_calibrate_test.go) enforces
// is that the model tracks the failure through the failure: the offered
// load is open-loop, so crashing k of N raises every survivor's
// utilization from ρ to ρ·N/(N−k), and the measured delay must leave
// the (N, ρ) bracket and land in the (N−k, ρ·N/(N−k)) one — then come
// back after the restore.
//
// The same act replays seed-deterministically in the simulator via its
// mirrored churn engine (sim.Options.Churn), printed as the third
// column: model bracket, simulated mean, live windowed mean.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"finitelb"
	"finitelb/internal/lb"
	"finitelb/internal/sim"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

const (
	n           = 4
	k           = 2    // servers crashed in act II
	rho         = 0.45 // per-server load while all N are up
	meanService = time.Millisecond
)

// bracket solves the paper's mean-delay bracket for (servers, load),
// walking the truncation threshold up until the upper-bound model is
// stable.
func bracket(servers int, load float64) (lo, hi float64) {
	sys, err := finitelb.NewSystem(servers, 2, load)
	if err != nil {
		log.Fatal(err)
	}
	for t := 3; t <= 5; t++ {
		if b, err := sys.DelayBounds(t); err == nil {
			return b.Lower.MeanDelay, b.Upper.MeanDelay
		}
	}
	log.Fatalf("no stable upper bound by T=5 at ρ=%g", load)
	return 0, 0
}

// simTwin runs the deterministic simulator twin of one phase: the
// degraded phase is "crash k at t=0", which the sim's live-set SQ(d)
// reproduces as the (N−k, ρ·N/(N−k)) system.
func simTwin(crash bool) float64 {
	var churn *workload.Churn
	if crash {
		churn = &workload.Churn{}
		for i := 0; i < k; i++ {
			churn.Events = append(churn.Events,
				workload.ChurnEvent{Kind: workload.ChurnCrash, T: 0, Server: 2*i + 1})
		}
	}
	res, err := sim.Run(sqd.Params{N: n, D: 2, Rho: rho},
		sim.Options{Jobs: 200_000, Seed: 7, Churn: churn})
	if err != nil {
		log.Fatal(err)
	}
	return res.MeanDelay
}

func main() {
	rhoK := rho * n / float64(n-k)
	loN, hiN := bracket(n, rho)
	loK, hiK := bracket(n-k, rhoK)

	farm, err := lb.New(lb.Config{
		N:           n,
		Policy:      workload.SQD{D: 2},
		MeanService: meanService,
		QueueCap:    1 << 16,
		BatchSize:   50,
		RetryBudget: 5,
		Chaos:       true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Open-loop background load: the offered rate is pinned to ρ·N
	// regardless of membership, which is what shifts the survivors'
	// utilization when servers crash.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := farm.RunLoadGen(ctx, lb.GenConfig{Rho: rho, Jobs: 1 << 62, Seed: 23}); err != nil && ctx.Err() == nil {
			log.Print("loadgen: ", err)
		}
	}()

	// window measures the mean delay of just the next span of wall
	// clock, by telescoping two lifetime snapshots.
	window := func(span time.Duration) float64 {
		s1 := farm.Summary()
		time.Sleep(span)
		s2 := farm.Summary()
		jobs := s2.Jobs - s1.Jobs
		if jobs <= 0 {
			log.Fatal("no jobs completed in the window")
		}
		return (s2.MeanDelay*float64(s2.Jobs) - s1.MeanDelay*float64(s1.Jobs)) / float64(jobs)
	}
	phase := func(name string, lo, hi, simMean, live float64) {
		verdict := "IN BRACKET"
		// The live farm carries timer lateness the virtual-time model
		// does not; flag only gross departures.
		if live < 0.5*lo || live > 1.5*hi {
			verdict = "OUT OF BRACKET"
		}
		fmt.Printf("%-28s model [%5.3f, %5.3f]   sim %5.3f   live %5.3f   %s\n",
			name, lo, hi, simMean, live, verdict)
	}

	fmt.Printf("SQ(2) farm, N=%d at ρ=%.2f; crashing k=%d mid-run pushes survivors to ρ=%.2f\n\n", n, rho, k, rhoK)
	time.Sleep(2 * time.Second) // warm up past the initial transient

	phase("act I: all servers up", loN, hiN, simTwin(false), window(3*time.Second))

	for i := 0; i < k; i++ {
		if err := farm.Crash(2*i + 1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n  crashed %d of %d (alive: %d); in-flight jobs redelivered to survivors\n\n", k, n, farm.Alive())
	time.Sleep(2 * time.Second) // let the degraded regime establish

	phase("act II: k crashed", loK, hiK, simTwin(true), window(4*time.Second))

	for i := 0; i < k; i++ {
		if err := farm.Join(2*i + 1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n  restored (alive: %d)\n\n", farm.Alive())
	time.Sleep(2 * time.Second) // drain the degraded backlog

	phase("act III: recovered", loN, hiN, simTwin(false), window(3*time.Second))

	cancel()
	wg.Wait()
	st, err := farm.Shutdown(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	o := farm.Recorder().Outcomes()
	fmt.Printf("\noutcome ledger: %d completed, %d requeued by churn, %d retries, %d dropped, %d abandoned\n",
		o.Completed, o.Requeued, o.Retried, o.Dropped, st.Abandoned)
}
