// Policies compares dispatch policies at equal load through the pluggable
// workload subsystem: the same arrival stream and service law, five
// dispatchers ranging from zero information (uniform random) through the
// paper's SQ(d) to full information (JSQ). Two vignettes:
//
//  1. the information/delay trade-off under the paper's Poisson/exponential
//     workload — where SQ(2) famously buys most of JSQ's benefit with two
//     samples — bracketed by the paper's analytic bounds where they apply;
//  2. the same policies under bursty heavy-tailed traffic
//     (hyperexponential arrivals, bounded-Pareto service), the regime the
//     QBD models cannot reach and the reason the simulator grew plugins.
package main

import (
	"fmt"
	"log"
	"os"

	"finitelb"
	"finitelb/internal/plot"
)

func main() {
	const (
		n    = 10
		d    = 2
		rho  = 0.85
		jobs = 400_000
		seed = 1
	)
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		log.Fatal(err)
	}

	policies := []struct{ name, spec string }{
		{"uniform random (SQ(1))", "random"},
		{"round-robin", "rr"},
		{"SQ(2), the paper's", "sqd"},
		{"join-idle-queue", "jiq"},
		{"JSQ (SQ(N))", "jsq"},
	}

	run := func(title, arrival, service string) {
		fmt.Printf("%s — N=%d, ρ=%.2f, %d jobs/policy\n\n", title, n, rho, jobs)
		var rows [][]string
		for _, p := range policies {
			r, err := sys.Simulate(finitelb.SimOptions{
				Jobs: jobs, Seed: seed,
				Arrival: arrival, Service: service, Policy: p.spec,
			})
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, []string{
				p.name,
				fmt.Sprintf("%.4f ± %.4f", r.MeanDelay, r.HalfWidth),
				fmt.Sprintf("%.3f", r.P50),
				fmt.Sprintf("%.3f", r.P99),
				fmt.Sprint(r.MaxQueue),
			})
		}
		if err := plot.Table(os.Stdout, []string{"policy", "mean delay", "p50", "p99", "max queue"}, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	run("dispatch policies, Poisson arrivals / exponential service", "poisson", "exponential")

	// Where the analytic machinery applies (the SQ(d) row above), show the
	// bracket the simulation must and does land in. At this load the
	// upper-bound model needs T=4 to be stable (the accuracy/complexity
	// trade-off of Section V), so walk T up until it is.
	for t := 3; t <= 4; t++ {
		b, err := sys.DelayBounds(t)
		if err != nil {
			fmt.Printf("QBD bounds at T=%d: unstable, raising T (%v)\n", t, err)
			continue
		}
		fmt.Printf("paper's QBD bounds for the SQ(%d) row at T=%d: [%.4f, %.4f]; asymptotic (N→∞) %.4f\n\n",
			d, t, b.Lower.MeanDelay, b.Upper.MeanDelay, sys.AsymptoticDelay())
		break
	}

	run("same policies, bursty heavy-tailed workload (H2 arrivals CV²=9, Pareto α=1.5 service)",
		"hyperexp:cv2=9", "pareto:alpha=1.5,h=1000")

	fmt.Println("two readings: (1) two choices buy most of full information at a fraction")
	fmt.Println("of its cost, under both workloads; (2) burstiness multiplies every")
	fmt.Println("policy's delay but punishes the load-blind ones hardest — and only the")
	fmt.Println("simulation rows exist there, since the paper's models assume Poisson/exp.")
}
