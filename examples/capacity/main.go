// Capacity planning with finite-regime bounds: how many probe choices d
// does a small cluster need to meet a latency SLO, and when does the
// asymptotic formula give the wrong answer?
//
// The scenario: a 8-server cache tier must keep mean request sojourn under
// 1.6 service times. The asymptotic formula says d=2 suffices up to very
// high load; the finite-regime *lower bound* proves where it cannot, and
// the upper bound certifies where a configuration is safe.
package main

import (
	"errors"
	"fmt"
	"log"

	"finitelb"
)

const (
	nServers = 8
	slo      = 1.6 // mean sojourn budget, in service times
	tdepth   = 4   // truncation threshold for the bounds
)

func main() {
	fmt.Printf("SLO: mean delay ≤ %.2f service times on N=%d servers\n\n", slo, nServers)
	fmt.Printf("%-6s %-8s %-12s %-12s %-12s %s\n",
		"ρ", "d", "asymptotic", "lower", "upper", "verdict")

	for _, rho := range []float64{0.70, 0.80, 0.90} {
		for d := 1; d <= nServers; d++ {
			sys, err := finitelb.NewSystem(nServers, d, rho)
			if err != nil {
				log.Fatal(err)
			}
			asy := sys.AsymptoticDelay()
			lb, err := sys.LowerBound(tdepth)
			if err != nil {
				log.Fatal(err)
			}
			upper := "unstable"
			verdict := ""
			ub, err := sys.UpperBound(tdepth)
			switch {
			case errors.Is(err, finitelb.ErrUnstable):
				// Can't certify from above at this T; the lower bound can
				// still *refute* the configuration.
			case err != nil:
				log.Fatal(err)
			default:
				upper = fmt.Sprintf("%.4f", ub.MeanDelay)
			}

			switch {
			case lb.MeanDelay > slo:
				verdict = "REJECTED (lower bound already violates SLO)"
			case upper != "unstable" && ub.MeanDelay <= slo:
				verdict = "CERTIFIED (upper bound meets SLO)"
			default:
				verdict = "inconclusive at this T"
			}
			asyVerdict := ""
			if asy <= slo && lb.MeanDelay > slo {
				asyVerdict = "  ← asymptotic formula would have shipped this!"
			}
			fmt.Printf("%-6.2f %-8d %-12.4f %-12.4f %-12s %s%s\n",
				rho, d, asy, lb.MeanDelay, upper, verdict, asyVerdict)

			// Stop at the first certified d for this load.
			if upper != "unstable" {
				if v, _ := sys.UpperBound(tdepth); v.MeanDelay <= slo {
					break
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("takeaway: at high load and small N, certifying an SLO needs the")
	fmt.Println("finite-regime bounds — the asymptotic formula is optimistic there.")
}
