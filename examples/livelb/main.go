// Livelb is the "from model to machine" walkthrough: one SQ(2) system
// evaluated three ways — the paper's analytic QBD delay bracket, the
// discrete-event simulator, and the live internal/lb runtime serving real
// wall-clock traffic on goroutine servers — all reporting in the same
// unit, multiples of the mean service time. The punchline the repository
// tests enforce (internal/lb/calibrate_test.go): all three agree, so
// Theorem-level finite-N guarantees hold for a running concurrent system,
// not just for its Markov model.
//
// The live row carries two caveats the output makes visible: it measures
// far fewer jobs than the simulator (wall-clock seconds instead of CPU
// minutes, so the confidence interval is wider), and its "realized
// service" gauge reports how faithfully the host's timers rendered the
// requested service times — on a noisy machine the live mean drifts up by
// roughly the completion-observation lateness the gauge shows.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"finitelb"
	"finitelb/internal/lb"
	"finitelb/internal/plot"
	"finitelb/internal/workload"
)

func main() {
	const (
		n           = 10
		d           = 2
		rho         = 0.85
		liveJobs    = 12_000
		simJobs     = 400_000
		meanService = 2 * time.Millisecond
	)

	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		log.Fatal(err)
	}

	// Model: the finite-N bracket (walking T up to the first threshold
	// where the upper-bound model is stable at this load).
	var bounds finitelb.Bounds
	boundsT := 0
	for t := 3; t <= 5; t++ {
		if b, err := sys.DelayBounds(t); err == nil {
			bounds, boundsT = b, t
			break
		}
	}
	if boundsT == 0 {
		log.Fatalf("no stable upper bound by T=5 at ρ=%g", rho)
	}

	// Simulation: the same system in virtual time.
	simRes, err := sys.Simulate(finitelb.SimOptions{Jobs: simJobs, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Machine: goroutine servers, atomic dispatch tables, real elapsed
	// time. One unit of work is rendered as 2ms of wall clock.
	farm, err := lb.New(lb.Config{
		N:           n,
		MeanService: meanService,
		Warmup:      liveJobs / 10,
		BatchSize:   liveJobs / (20 * n),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driving the live farm: %d jobs at ρ=%g across %d servers (~%.0fs of wall clock)...\n\n",
		liveJobs, rho, n, float64(liveJobs)/(rho*n)*meanService.Seconds())
	live, err := farm.RunLoadGen(context.Background(), lb.GenConfig{Rho: rho, Jobs: liveJobs, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := farm.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SQ(%d), N=%d, ρ=%.2f — mean sojourn in service times, three ways:\n\n", d, n, rho)
	rows := [][]string{
		{"QBD lower bound (Thm 3)", fmt.Sprintf("%.4f", bounds.Lower.MeanDelay), fmt.Sprintf("T=%d", boundsT), "analytic"},
		{"discrete-event simulation", fmt.Sprintf("%.4f ± %.4f", simRes.MeanDelay, simRes.HalfWidth), fmt.Sprintf("%d jobs", simRes.Jobs), "virtual time"},
		{"live runtime (internal/lb)", fmt.Sprintf("%.4f ± %.4f", live.MeanDelay, live.HalfWidth), fmt.Sprintf("%d jobs", live.Jobs), "wall clock"},
		{"QBD upper bound (Thm 1)", fmt.Sprintf("%.4f", bounds.Upper.MeanDelay), fmt.Sprintf("T=%d", boundsT), "analytic"},
		{"asymptotic (N→∞)", fmt.Sprintf("%.4f", sys.AsymptoticDelay()), "", "Eq. (16)"},
	}
	if err := plot.Table(os.Stdout, []string{"estimate", "mean delay", "evidence", "kind"}, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlive p50/p95/p99: %.3f / %.3f / %.3f; max queue %d; realized service %.3f× nominal\n",
		live.P50, live.P95, live.P99, live.MaxQueue, live.MeanService)
	fmt.Println("\nreading: the live measurement lands inside the analytic bracket —")
	fmt.Println("the paper's finite-regime bounds, computed from a Markov model, hold")
	fmt.Println("for an actual concurrent dispatcher under real traffic. The asymptotic")
	fmt.Println("line under-predicts all of them, which is the paper's warning about")
	fmt.Println("trusting N→∞ formulas at finite N.")

	// Act two: dispatch at scale. JSQ needs a global argmin, which an
	// O(N) scan renders unaffordable exactly where the finite-N-versus-
	// asymptote question gets interesting (large farms): ~9–12µs per pick
	// at N=1000 caps dispatch near 80k jobs/sec. At N ≥ 64 the runtime
	// routes JSQ through a hierarchical min-index (internal/minindex), so
	// the same experiment runs at N=2000 with several dispatcher
	// goroutines sharing one farm, paced by burst batching.
	const (
		bigN    = 2000
		bigJobs = 40_000
		bigRho  = 0.8
		bigMean = 20 * time.Millisecond // 80k offered jobs/sec aggregate
	)
	// BatchSize is small because measurements spread across 2000 per-server
	// shards — ~18 measured jobs each — and the batch-means CI needs a few
	// batches per shard to be finite.
	// QueueCap stays modest: 2000 servers × the default 4096-slot channels
	// would allocate ~half a GB of buffer backing for queues that JSQ at
	// ρ=0.8 keeps 1-2 deep.
	bigFarm, err := lb.New(lb.Config{N: bigN, Policy: workload.JSQ{}, MeanService: bigMean, Warmup: bigJobs / 10, BatchSize: 5, QueueCap: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndispatch at scale: JSQ over N=%d servers, %d jobs at ρ=%g (%.0fk offered jobs/sec), 4 dispatchers...\n",
		bigN, bigJobs, bigRho, bigRho*bigN/bigMean.Seconds()/1e3)
	t0 := time.Now()
	big, err := bigFarm.RunLoadGen(context.Background(), lb.GenConfig{
		Rho: bigRho, Jobs: bigJobs, Seed: 7, Dispatchers: 4, Batch: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	if _, err := bigFarm.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatched %d jobs in %v (%.0fk jobs/sec through one indexed table);\n",
		big.Completed, elapsed.Round(time.Millisecond), float64(big.Completed)/elapsed.Seconds()/1e3)
	fmt.Printf("mean delay %.3f ± %.3f service times — a pick rate no O(N) scan could sustain.\n",
		big.MeanDelay, big.HalfWidth)
}
