// Flightrecorder demonstrates per-job lifecycle tracing (doc.go "Tracing
// the job lifecycle"): the same simulation run twice, with and without a
// trace.Recorder wired into the event loop, proving the flight recorder's
// two contracts — the traced run is bit-identical to the untraced one
// (tracing never consumes a simulation draw), and the recorder turns the
// aggregate mean sojourn into a per-stage decomposition (pick + wait +
// service) plus concrete per-job evidence: which server each sampled job
// went to, the queue it saw, and how long each lifecycle stage took.
//
// The live counterpart is cmd/lbd: `lbd -trace 4` wires the same recorder
// into the dispatch path and serves the spans at GET /debug/jobs
// (JSON or ?format=csv) with per-stage Prometheus histograms on /metrics.
package main

import (
	"fmt"
	"log"

	"finitelb/internal/sim"
	"finitelb/internal/sqd"
	"finitelb/internal/trace"
)

func main() {
	p := sqd.Params{N: 8, D: 2, Rho: 0.9}
	opts := sim.Options{Jobs: 200_000, Seed: 7}

	// Baseline: no recorder.
	plain, err := sim.Run(p, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Same run, flight recorder attached: every 4th job gets a span in a
	// 1024-slot ring. Model time is already in mean-service-time units,
	// so Scale is 1.
	rec := trace.New(trace.Config{Sample: 4, Cap: 1024, Seed: opts.Seed, Scale: 1})
	opts.Trace = rec
	traced, err := sim.Run(p, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SQ(%d), N=%d, ρ=%.2f, %d jobs\n\n", p.D, p.N, p.Rho, plain.Jobs)
	fmt.Printf("untraced: %v\n", plain)
	fmt.Printf("traced:   %v\n", traced)
	if plain != traced {
		log.Fatal("traced run diverged from untraced — bit-identity broken")
	}
	fmt.Println("bit-identical: tracing consumed no simulation draws")

	// The aggregate, decomposed: where does the sojourn go?
	st := rec.Stages()
	fmt.Printf("\nstage decomposition over %d sampled jobs (service-time units):\n", st.N)
	fmt.Printf("  %-8s %10s %10s %10s\n", "stage", "mean", "p50", "p99")
	for _, row := range []struct {
		name string
		sum  float64
		q    interface{ Quantile(float64) float64 }
	}{
		{"pick", st.PickSum, st.Pick},
		{"wait", st.WaitSum, st.Wait},
		{"service", st.ServiceSum, st.Service},
	} {
		fmt.Printf("  %-8s %10.4f %10.4f %10.4f\n",
			row.name, row.sum/float64(st.N), row.q.Quantile(0.5), row.q.Quantile(0.99))
	}
	fmt.Printf("  %-8s %10.4f   (pick+wait+service ≈ mean sojourn %.4f)\n",
		"total", (st.PickSum+st.WaitSum+st.ServiceSum)/float64(st.N), traced.MeanDelay)

	// The evidence: the most recent spans in the ring.
	spans := rec.Spans(6)
	fmt.Printf("\nlast %d sampled jobs (of %d seen, %d sampled, ring keeps %d):\n",
		len(spans), rec.Seen(), rec.Sampled(), rec.Cap())
	fmt.Printf("  %8s %6s %5s %5s %9s %9s %9s\n",
		"seq", "server", "qlen", "ties", "wait", "service", "sojourn")
	for _, sp := range spans {
		fmt.Printf("  %8d %6d %5d %5d %9.4f %9.4f %9.4f\n",
			sp.Seq, sp.Server, sp.QLen, sp.Ties,
			sp.Start-sp.Enqueued, sp.Done-sp.Start, sp.Done-sp.Arrival)
	}
}
