package finitelb

import (
	"errors"
	"fmt"

	"finitelb/internal/asym"
	"finitelb/internal/markov"
	"finitelb/internal/qbd"
	"finitelb/internal/sim"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

// ErrUnstable reports that the upper-bound model has insufficient effective
// capacity at the requested utilization and threshold T: the wasted
// services and phantom arrivals of the modified system push its drift past
// the stability boundary even though the real system (ρ < 1) is stable.
// Increase T (tighter, costlier) or lower ρ.
var ErrUnstable = qbd.ErrUnstable

// System describes an SQ(d) load-balancing system: N parallel unit-rate
// FIFO servers fed by a Poisson stream of rate ρ·N through a dispatcher
// that samples d distinct servers per job and picks the least loaded.
type System struct {
	p sqd.Params
}

// NewSystem validates and builds a system description.
// n is the number of servers, d the number of choices (1 ≤ d ≤ n), and
// rho the per-server utilization (0 < rho < 1).
func NewSystem(n, d int, rho float64) (*System, error) {
	p := sqd.Params{N: n, D: d, Rho: rho}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &System{p: p}, nil
}

// N returns the number of servers.
func (s *System) N() int { return s.p.N }

// D returns the number of choices per arrival.
func (s *System) D() int { return s.p.D }

// Rho returns the per-server utilization.
func (s *System) Rho() float64 { return s.p.Rho }

// AsymptoticDelay returns Mitzenmacher's N→∞ mean sojourn time (Eq. (16)),
// the baseline the paper shows to be misleading at small N and high ρ.
func (s *System) AsymptoticDelay() float64 {
	return asym.Delay(s.p.D, s.p.Rho)
}

// BoundResult is one side of a finite-regime delay bound.
type BoundResult struct {
	MeanDelay   float64 // bound on the mean sojourn time
	MeanWait    float64 // bound on the mean waiting time (sojourn − service)
	MeanWaiting float64 // bound on E[# jobs waiting] (not in service)

	T            int // truncation threshold used
	BlockSize    int // per-block state count C(N+T−1, T)
	LRIterations int // logarithmic-reduction iterations (0 for Theorem 3 path)
}

// Bounds packages the two sides.
type Bounds struct {
	Lower BoundResult
	Upper BoundResult
}

// LowerBound computes the finite-regime lower bound on the mean delay with
// threshold T via Theorem 3's improved method (scalar rate ρᴺ): the larger
// T, the tighter (and costlier) the bound.
func (s *System) LowerBound(t int) (BoundResult, error) {
	return s.lowerBound(t, true)
}

// LowerBoundMatrixGeometric computes the same lower bound through the full
// Theorem 1 pipeline (logarithmic reduction + rate matrix R). It exists to
// expose the accuracy/complexity comparison of Section IV-B; the result
// matches LowerBound to solver precision.
func (s *System) LowerBoundMatrixGeometric(t int) (BoundResult, error) {
	return s.lowerBound(t, false)
}

func (s *System) lowerBound(t int, improved bool) (BoundResult, error) {
	model := &sqd.LowerBound{P: sqd.BoundParams{Params: s.p, T: t}}
	sol, err := qbd.Solve(model, qbd.Options{ImprovedLB: improved})
	if err != nil {
		return BoundResult{}, fmt.Errorf("finitelb: lower bound: %w", err)
	}
	return boundResult(sol, t), nil
}

// UpperBound computes the finite-regime upper bound on the mean delay with
// threshold T. It returns an error wrapping ErrUnstable when the modified
// system is not stable at this (ρ, T); larger T both tightens the bound
// and widens its stability region, at a block size growing as C(N+T−1, T).
func (s *System) UpperBound(t int) (BoundResult, error) {
	model := &sqd.UpperBound{P: sqd.BoundParams{Params: s.p, T: t}}
	sol, err := qbd.Solve(model, qbd.Options{})
	if err != nil {
		if errors.Is(err, qbd.ErrUnstable) {
			return BoundResult{}, fmt.Errorf("finitelb: upper bound with T=%d: %w", t, err)
		}
		return BoundResult{}, fmt.Errorf("finitelb: upper bound: %w", err)
	}
	return boundResult(sol, t), nil
}

// DelayBounds computes both bounds with the same threshold T.
func (s *System) DelayBounds(t int) (Bounds, error) {
	lo, err := s.LowerBound(t)
	if err != nil {
		return Bounds{}, err
	}
	hi, err := s.UpperBound(t)
	if err != nil {
		return Bounds{}, err
	}
	return Bounds{Lower: lo, Upper: hi}, nil
}

func boundResult(sol *qbd.Solution, t int) BoundResult {
	return BoundResult{
		MeanDelay:    sol.MeanDelay,
		MeanWait:     sol.MeanWait,
		MeanWaiting:  sol.MeanWaiting,
		T:            t,
		BlockSize:    sol.Blocks.BlockSize(),
		LRIterations: sol.LRIterations,
	}
}

// ExactResult is the numerically exact stationary solution (small N only).
type ExactResult struct {
	MeanDelay float64 // exact mean sojourn time
	MeanWait  float64 // exact mean waiting time
	// TruncationMass is the stationary probability of the clipped frontier
	// (any queue at the cap); it bounds the numerical truncation error and
	// should be ≪ 1e-8 for trustworthy digits.
	TruncationMass float64
}

// ExactDelay solves the unmodified SQ(d) Markov chain on a queue-capped
// space. The space has C(cap+N, N) states, so this is only feasible for
// small N; pass cap 0 for an automatic choice. It is the ground truth the
// bounds are validated against.
func (s *System) ExactDelay(cap int) (ExactResult, error) {
	res, err := markov.SolveExact(s.p, markov.ExactOptions{QueueCap: cap})
	if err != nil {
		return ExactResult{}, fmt.Errorf("finitelb: exact solve: %w", err)
	}
	return ExactResult{
		MeanDelay:      res.MeanDelay,
		MeanWait:       res.MeanWait,
		TruncationMass: res.TailMass,
	}, nil
}

// SimOptions configures Simulate.
type SimOptions struct {
	Jobs   int64  // measured departures (default 1e6)
	Warmup int64  // discarded leading departures (default Jobs/10)
	Seed   uint64 // RNG seed (default 1)
	// Replications splits the job budget across R independently seeded
	// streams run concurrently and pooled into one estimate (default 1,
	// the bit-exact serial path; each stream pays the full Warmup).
	Replications int

	// Arrival selects the interarrival process by spec string:
	// "poisson" (default — the only process the analytic bounds cover),
	// "deterministic", "erlang:K" (smoother), "hyperexp:CV2" (bursty).
	Arrival string
	// Service selects the unit-mean service-time law: "exponential"
	// (default), "deterministic", "erlang:K", "pareto:ALPHA[,h=H]"
	// (heavy-tailed bounded Pareto).
	Service string
	// Policy selects the dispatch policy: "sqd" (default, using the
	// system's d; "sqd:D" overrides it), "jsq", "jiq", "lwl"
	// (least-work-left), "round-robin", "random".
	Policy string
	// Speeds declares a heterogeneous fleet as a comma list of per-server
	// speed factors ("1,1,2.5") or SPEEDxCOUNT groups ("1x8,4x2"); empty
	// means homogeneous unit speed. The aggregate arrival rate scales with
	// the total speed so Rho stays the system utilization.
	Speeds string
}

// SimResult reports a simulation estimate.
type SimResult struct {
	MeanDelay float64 // estimated mean sojourn time
	MeanWait  float64 // estimated mean waiting time
	HalfWidth float64 // 95% confidence half-width on MeanDelay
	Jobs      int64   // measured departures
	MaxQueue  int     // longest queue observed

	// Sojourn-time quantiles, in service times (sketch-estimated within
	// 1% relative error).
	P50, P95, P99 float64

	// Overflow counts observations the tail estimator could not resolve;
	// always 0 under the default sketch estimator, which has no range
	// ceiling.
	Overflow int64
}

// Simulate runs the discrete-event simulator. With zero-valued workload
// specs it is the paper's baseline — Poisson arrivals, exponential
// homogeneous servers, SQ(d) — bit-identical run for run (the paper's
// plots use 1e8 jobs per point; adjust Jobs for full fidelity). The
// Arrival, Service, Policy, and Speeds specs open every other scenario;
// those combinations are beyond the analytic bounds, which is the point.
func (s *System) Simulate(opts SimOptions) (SimResult, error) {
	arrival, err := workload.ParseArrival(opts.Arrival)
	if err != nil {
		return SimResult{}, fmt.Errorf("finitelb: simulate: %w", err)
	}
	service, err := workload.ParseService(opts.Service)
	if err != nil {
		return SimResult{}, fmt.Errorf("finitelb: simulate: %w", err)
	}
	policy, err := workload.ParsePolicy(opts.Policy)
	if err != nil {
		return SimResult{}, fmt.Errorf("finitelb: simulate: %w", err)
	}
	speeds, err := workload.ParseSpeeds(opts.Speeds, s.p.N)
	if err != nil {
		return SimResult{}, fmt.Errorf("finitelb: simulate: %w", err)
	}
	res, err := sim.Run(s.p, sim.Options{
		Jobs: opts.Jobs, Warmup: opts.Warmup, Seed: opts.Seed, Replications: opts.Replications,
		Arrival: arrival, Service: service, Policy: policy, Speeds: speeds,
	})
	if err != nil {
		return SimResult{}, fmt.Errorf("finitelb: simulate: %w", err)
	}
	return SimResult{
		MeanDelay: res.MeanDelay,
		MeanWait:  res.MeanWait,
		HalfWidth: res.HalfWidth,
		Jobs:      res.Jobs,
		MaxQueue:  res.MaxQueue,
		P50:       res.P50,
		P95:       res.P95,
		P99:       res.P99,
		Overflow:  res.Overflow,
	}, nil
}

// DelayDistribution is the full stationary sojourn-time law of the exact
// SQ(d) model (small N), computed as an Erlang mixture over the
// arrival-selected queue length (PASTA). It extends the paper's mean-delay
// focus to SLO-style tail questions.
type DelayDistribution struct {
	d *markov.Distribution
}

// Tail returns P(sojourn > t), t in service times.
func (dd *DelayDistribution) Tail(t float64) float64 { return dd.d.DelayTail(t) }

// Quantile returns the q-quantile of the sojourn time.
func (dd *DelayDistribution) Quantile(q float64) float64 { return dd.d.Quantile(q, 1e-9) }

// ServerTail returns P(a uniformly chosen server holds ≥ k jobs) — the
// finite-N counterpart of the asymptotic fixed point (AsymptoticQueueTail).
func (dd *DelayDistribution) ServerTail(k int) float64 {
	if k < 0 || k >= len(dd.d.ServerTail) {
		return 0
	}
	return dd.d.ServerTail[k]
}

// ExactDistribution solves the exact chain (small N; see ExactDelay) and
// returns the sojourn-time distribution alongside the mean-delay result.
func (s *System) ExactDistribution(cap int) (ExactResult, *DelayDistribution, error) {
	res, dist, err := markov.SolveExactDistribution(s.p, markov.ExactOptions{QueueCap: cap})
	if err != nil {
		return ExactResult{}, nil, fmt.Errorf("finitelb: exact distribution: %w", err)
	}
	er := ExactResult{
		MeanDelay:      res.MeanDelay,
		MeanWait:       res.MeanWait,
		TruncationMass: res.TailMass,
	}
	return er, &DelayDistribution{d: dist}, nil
}

// DelayBracket brackets the stationary sojourn-time law of SQ(d) between
// the Erlang mixtures induced by the two bound chains' arrival-join
// distributions (qbd.JoinDistribution): each side is Σ_k w[k]·Erlang(k+1, 1)
// with w the probability an arrival joins a queue holding k jobs in that
// bound model.
//
// Honesty note: the paper's Theorem 1 orders the *mean* delays of the three
// chains; the quantile bracket below is the natural distributional transfer
// and carries no precedence proof. Empirically (package tests,
// internal/lb/calibrate_test.go) the exact chain's quantiles fall inside
// [Lower, Upper] up to a sub-0.1% crossing of the lower side at small T
// that shrinks as T grows; both sides converge to the exact law.
type DelayBracket struct {
	lower, upper *markov.Distribution
}

// Tail returns the two models' P(sojourn > t), t in service times.
func (b *DelayBracket) Tail(t float64) (lower, upper float64) {
	return b.lower.DelayTail(t), b.upper.DelayTail(t)
}

// Quantile returns the two models' q-quantiles of the sojourn time.
func (b *DelayBracket) Quantile(q float64) (lower, upper float64) {
	return b.lower.Quantile(q, 1e-9), b.upper.Quantile(q, 1e-9)
}

// Mean returns the two mixtures' mean sojourns. These are the Erlang-mixture
// means, not the theorem-backed mean bounds — use DelayBounds for those.
func (b *DelayBracket) Mean() (lower, upper float64) {
	return b.lower.MeanDelay(), b.upper.MeanDelay()
}

// DelayDistributionBracket solves both bound chains with threshold T and
// returns the distributional bracket. The lower side uses the full
// matrix-geometric pipeline (not Theorem 3's scalar shortcut) so the join
// distribution is that of the actual lower-bound chain. Returns ErrUnstable
// (wrapped) when the upper-bound chain is unstable at this (ρ, T).
func (s *System) DelayDistributionBracket(t int) (*DelayBracket, error) {
	lbModel := &sqd.LowerBound{P: sqd.BoundParams{Params: s.p, T: t}}
	lbSol, err := qbd.Solve(lbModel, qbd.Options{})
	if err != nil {
		return nil, fmt.Errorf("finitelb: delay bracket lower: %w", err)
	}
	wLo, err := lbSol.JoinDistribution()
	if err != nil {
		return nil, fmt.Errorf("finitelb: delay bracket lower: %w", err)
	}
	ubModel := &sqd.UpperBound{P: sqd.BoundParams{Params: s.p, T: t}}
	ubSol, err := qbd.Solve(ubModel, qbd.Options{})
	if err != nil {
		return nil, fmt.Errorf("finitelb: delay bracket upper with T=%d: %w", t, err)
	}
	wHi, err := ubSol.JoinDistribution()
	if err != nil {
		return nil, fmt.Errorf("finitelb: delay bracket upper: %w", err)
	}
	return &DelayBracket{
		lower: &markov.Distribution{Selected: wLo},
		upper: &markov.Distribution{Selected: wHi},
	}, nil
}

// AsymptoticQueueTail returns Mitzenmacher's fixed point s_k — the N → ∞
// fraction of servers with at least k jobs, ρ^{(dᵏ−1)/(d−1)}.
func AsymptoticQueueTail(d int, rho float64, k int) float64 {
	return asym.QueueTail(d, rho, k)
}

// AsymptoticDelayTail returns the N → ∞ sojourn tail P(T > t) under SQ(d).
func AsymptoticDelayTail(d int, rho float64, t float64) float64 {
	return asym.DelayTail(d, rho, t)
}

// AsymptoticDelay is the package-level convenience for Eq. (16) without
// constructing a System: the formula does not depend on N.
func AsymptoticDelay(d int, rho float64) float64 { return asym.Delay(d, rho) }

// SigmaRoot solves Theorem 2's embedded-chain equation x = Σ xᵏβ_k for a
// custom interarrival law given its β_k sequence (the probability of k
// service completions at a busy server during one interarrival). For
// Poisson arrivals the root is exactly ρ (Theorem 3). See BetasPoisson,
// BetasErlang, BetasDeterministic, BetasHyperExp.
func SigmaRoot(betas func(k int) float64) (float64, error) {
	return asym.SolveSigma(asym.BetaFunc(betas), 0)
}

// BetasPoisson returns the β_k sequence for Poisson arrivals (rate lambda)
// at a rate-mu server.
func BetasPoisson(lambda, mu float64) func(int) float64 {
	return asym.PoissonBetas(lambda, mu)
}

// BetasErlang returns the β_k sequence for Erlang-r interarrivals with
// mean 1/lambda.
func BetasErlang(r int, lambda, mu float64) func(int) float64 {
	return asym.ErlangBetas(r, lambda, mu)
}

// BetasDeterministic returns the β_k sequence for fixed interarrivals 1/lambda.
func BetasDeterministic(lambda, mu float64) func(int) float64 {
	return asym.DeterministicBetas(lambda, mu)
}

// BetasHyperExp returns the β_k sequence for a two-phase hyperexponential
// interarrival law: rate l1 with probability w, rate l2 otherwise.
func BetasHyperExp(w, l1, l2, mu float64) func(int) float64 {
	return asym.HyperExpBetas(w, l1, l2, mu)
}
